#include "sched/gss.h"

#include <algorithm>
#include <utility>

#include "common/check.h"
#include "obs/profile.h"

namespace vod::sched {

GssScheduler::GssScheduler(int group_size) : group_size_(group_size) {
  VOD_CHECK(group_size >= 1);
}

void GssScheduler::SortByCylinder(const SchedulerContext& ctx,
                                  std::vector<RequestId>* ids) {
  std::sort(ids->begin(), ids->end(), [&ctx](RequestId a, RequestId b) {
    const double ca = ctx.CurrentCylinder(a);
    const double cb = ctx.CurrentCylinder(b);
    if (ca != cb) return ca < cb;
    return a < b;
  });
}

void GssScheduler::Add(RequestId id, Seconds /*now*/) {
  // BubbleUp at group granularity: join the first *upcoming* group with
  // space so the newcomer is serviced right after the group currently in
  // service. While the front group's turn is active (roster_active_), it is
  // "in service" and skipped; otherwise the front group is itself upcoming.
  const std::size_t first_upcoming = roster_active_ && !groups_.empty() ? 1 : 0;
  for (std::size_t i = first_upcoming; i < groups_.size(); ++i) {
    if (static_cast<int>(groups_[i].size()) < group_size_) {
      groups_[i].push_back(id);
      return;
    }
  }
  // No upcoming group has space: open a new group positioned right after
  // the front group (the one in service, or next to be served), so the
  // newcomer is reached after at most one group turn — Eq. (4)'s 2g slots.
  const std::size_t pos = groups_.empty() ? 0 : 1;
  std::vector<RequestId> fresh{id};
  groups_.insert(groups_.begin() + static_cast<std::ptrdiff_t>(pos),
                 std::move(fresh));
}

void GssScheduler::Remove(RequestId id) {
  bool removed_front_group = false;
  for (auto git = groups_.begin(); git != groups_.end(); ++git) {
    auto it = std::find(git->begin(), git->end(), id);
    if (it == git->end()) continue;
    git->erase(it);
    if (git->empty()) {
      removed_front_group = git == groups_.begin();
      groups_.erase(git);
    }
    break;
  }
  auto rit = std::find(current_roster_.begin(), current_roster_.end(), id);
  if (rit != current_roster_.end()) current_roster_.erase(rit);

  if (roster_active_ && current_roster_.empty()) {
    // The in-service group's turn ended with this departure. If the group
    // still exists (wasn't erased as empty), rotate it to the back.
    if (!removed_front_group && !groups_.empty()) {
      groups_.push_back(std::move(groups_.front()));
      groups_.pop_front();
    }
    roster_active_ = false;
  }
}

const std::vector<RequestId>& GssScheduler::ServiceSequence(
    const SchedulerContext& ctx, Seconds /*now*/) {
  VODB_PROF_SCOPE("sched.gss.sequence");
  if (!roster_active_) {
    // Open the turn of the first group that has work; rotate duty-free
    // groups to the back (each group inspected at most once).
    for (std::size_t attempts = 0; attempts < groups_.size(); ++attempts) {
      current_roster_.clear();
      current_roster_.reserve(groups_.front().size());
      for (RequestId id : groups_.front()) {
        if (ctx.NeedsService(id)) current_roster_.push_back(id);
      }
      if (!current_roster_.empty()) {
        SortByCylinder(ctx, &current_roster_);
        roster_active_ = true;
        break;
      }
      // Rotate the duty-free group to the back; moving the vector keeps
      // its element storage instead of copying it. The deque node growth
      // is O(groups) once per turn, off the per-request path.
      groups_.push_back(std::move(groups_.front()));  // vodb-lint: allow(alloc-in-hot-path)
      groups_.pop_front();
    }
  }
  seq_.clear();
  seq_.reserve(current_roster_.size());
  for (RequestId id : current_roster_) {
    if (ctx.NeedsService(id)) seq_.push_back(id);
  }
  // Flatten the remaining groups in cyclic order for deadline lookahead.
  // `grp_` keeps its capacity across rounds: after warm-up the loop
  // allocates only when a group outgrows every earlier one.
  for (std::size_t i = 1; i < groups_.size(); ++i) {
    grp_.clear();
    grp_.reserve(groups_[i].size());
    for (RequestId id : groups_[i]) {
      if (ctx.NeedsService(id)) grp_.push_back(id);
    }
    SortByCylinder(ctx, &grp_);
    seq_.insert(seq_.end(), grp_.begin(), grp_.end());
  }
  return seq_;
}

void GssScheduler::OnServiceComplete(RequestId id, Seconds /*now*/) {
  auto it = std::find(current_roster_.begin(), current_roster_.end(), id);
  if (it == current_roster_.end()) {
    // Serviced out of turn (the no-displacement rule reached past the
    // in-service group under overload). Its own group's turn still stands;
    // nothing to rotate.
    return;
  }
  current_roster_.erase(it);
  if (current_roster_.empty()) {
    // Group turn complete: rotate it to the back of the cycle.
    VOD_CHECK(!groups_.empty());
    groups_.push_back(std::move(groups_.front()));
    groups_.pop_front();
    roster_active_ = false;
  }
}

}  // namespace vod::sched
