#ifndef VODB_SCHED_SCHEDULER_H_
#define VODB_SCHED_SCHEDULER_H_

#include <optional>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "common/units.h"

namespace vod::sched {

/// Read-only view of request state the schedulers need. Implemented by the
/// simulator (and by test fixtures).
class SchedulerContext {
 public:
  virtual ~SchedulerContext() = default;

  /// When the request's buffer runs empty (its service deadline). Requests
  /// that have never been serviced return +infinity — an unfilled buffer
  /// cannot underflow (urgency for them is about latency, handled by the
  /// ordering, not about continuity). Fully delivered requests are never in
  /// a service sequence.
  virtual Seconds BufferDeadline(RequestId id) const = 0;

  /// True until the request's first buffer fill completes.
  virtual bool NeverServiced(RequestId id) const = 0;

  /// Disk cylinder of the request's next read (Sweep ordering key).
  virtual double CurrentCylinder(RequestId id) const = 0;

  /// Whether the request still has undelivered data.
  virtual bool NeedsService(RequestId id) const = 0;

  /// Conservative (worst-case) duration of the request's next buffer fill.
  virtual Seconds WorstServiceTime(RequestId id) const = 0;

  /// Worst-case duration of one hypothetical newcomer service. The pacing
  /// rule reserves this much slack ahead of every established deadline so a
  /// BubbleUp insertion never displaces an urgent refill — the slack the
  /// allocation schemes budget for (k·slots dynamically, N−n free slots
  /// statically).
  virtual Seconds NewcomerReserve() const = 0;
};

/// A scheduling decision: service `id`, starting no earlier than
/// `not_before` (the just-in-time start that keeps every queued buffer fed
/// while maximizing memory sharing — the Sweep*/GSS* "as late as possible"
/// rule).
struct ServiceDecision {
  RequestId id = kInvalidRequestId;
  Seconds not_before;
};

/// Order-of-service policy (Sec. 2.2). The scheduler owns only ordering and
/// admission *timing*; admission *control* (Assumption 1) belongs to the
/// BufferAllocator, and service *timing* safety is computed from the
/// sequence via LatestSafeStart below.
class BufferScheduler {
 public:
  virtual ~BufferScheduler() = default;

  /// Registers a newly admitted request (it has no buffer yet).
  virtual void Add(RequestId id, Seconds now) = 0;

  /// Removes a departed request.
  virtual void Remove(RequestId id) = 0;

  /// Whether a new request may enter service immediately (BubbleUp-style)
  /// or must wait for the next period boundary (Sweep*).
  virtual bool AdmitsMidPeriod() const = 0;

  /// The upcoming service order over all registered requests that still
  /// need service, starting with the request to service next. Pure —
  /// repeated calls without intervening mutations return the same sequence.
  /// The returned reference aliases scheduler-owned scratch (`seq_`) and is
  /// valid until the next ServiceSequence/Next call: the sequence is
  /// rebuilt every round, so handing out the buffer instead of a fresh
  /// vector keeps the per-round scheduling loop allocation-free once the
  /// scratch reaches steady-state capacity.
  virtual const std::vector<RequestId>& ServiceSequence(
      const SchedulerContext& ctx, Seconds now) = 0;

  /// Notifies that `id`'s buffer fill finished at `now` (advances rings,
  /// periods, and group cursors).
  virtual void OnServiceComplete(RequestId id, Seconds now) = 0;

  /// Picks the next service and its start time. std::nullopt when nothing
  /// needs service. The policy combines three rules:
  ///  - lazy: with only established buffers queued, start at the latest
  ///    safe moment (maximizes memory sharing);
  ///  - eager on newcomers: while any never-serviced request is queued,
  ///    start immediately (BubbleUp's low-latency rule);
  ///  - no displacement: if serving the leading newcomers first would make
  ///    an established buffer miss its deadline (by worst-case accounting),
  ///    skip past them and refill established buffers first. The dynamic
  ///    scheme's k·slot reservation normally keeps this branch cold.
  std::optional<ServiceDecision> Next(const SchedulerContext& ctx,
                                      Seconds now);

 protected:
  /// Backing storage for ServiceSequence (flat round scratch, reused across
  /// rounds). Implementations rebuild it on every call; reuse is what keeps
  /// the per-round scheduling loop allocation-free at steady state.
  std::vector<RequestId> seq_;
};

/// The latest time the server may start working through `sequence` (in
/// order, back to back, each service taking its worst-case time) such that
/// every request is refilled no later than its deadline:
///
///   latest = min over positions j of ( deadline_j − Σ_{m<=j} svc_m )
///
/// Starting later than this risks a buffer underflow; starting earlier
/// only reduces memory sharing. Returns +inf for an empty sequence.
Seconds LatestSafeStart(const SchedulerContext& ctx,
                        const std::vector<RequestId>& sequence);

}  // namespace vod::sched

#endif  // VODB_SCHED_SCHEDULER_H_
