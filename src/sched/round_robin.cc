#include "sched/round_robin.h"

#include <algorithm>

#include "common/check.h"
#include "obs/profile.h"

namespace vod::sched {

void RoundRobinScheduler::Add(RequestId id, Seconds /*now*/) {
  fresh_.push_back(id);
}

void RoundRobinScheduler::Remove(RequestId id) {
  auto fit = std::find(fresh_.begin(), fresh_.end(), id);
  if (fit != fresh_.end()) {
    fresh_.erase(fit);
    return;
  }
  ring_.remove(id);
}

const std::vector<RequestId>& RoundRobinScheduler::ServiceSequence(
    const SchedulerContext& ctx, Seconds /*now*/) {
  VODB_PROF_SCOPE("sched.round_robin.sequence");
  seq_.clear();
  seq_.reserve(fresh_.size() + ring_.size());
  for (RequestId id : fresh_) {
    if (ctx.NeedsService(id)) seq_.push_back(id);
  }
  for (RequestId id : ring_) {
    if (ctx.NeedsService(id)) seq_.push_back(id);
  }
  return seq_;
}

void RoundRobinScheduler::OnServiceComplete(RequestId id, Seconds /*now*/) {
  // A newcomer may be serviced out of FIFO order when the no-displacement
  // rule skipped past it temporarily, so search the whole fresh queue.
  auto fit = std::find(fresh_.begin(), fresh_.end(), id);
  if (fit != fresh_.end()) {
    fresh_.erase(fit);
    ring_.push_back(id);
    return;
  }
  // Rotate the serviced request to the back of the ring.
  auto it = std::find(ring_.begin(), ring_.end(), id);
  VOD_CHECK(it != ring_.end());
  ring_.erase(it);
  ring_.push_back(id);
}

}  // namespace vod::sched
