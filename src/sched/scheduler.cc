#include "sched/scheduler.h"

#include <algorithm>
#include <limits>

namespace vod::sched {

std::optional<ServiceDecision> BufferScheduler::Next(
    const SchedulerContext& ctx, Seconds now) {
  const std::vector<RequestId>& seq = ServiceSequence(ctx, now);
  if (seq.empty()) return std::nullopt;

  // Every branch below reads each per-request fact at most once, and the
  // two common branches stop after the first couple of sequence entries —
  // so the decision walks the context lazily with early exits instead of
  // gathering facts for the whole round up front (measured: an eager
  // gather tripled bubbleup_insert's per-decision cost).
  ServiceDecision d;
  if (ctx.NeverServiced(seq.front())) {
    // BubbleUp: serve the newcomer immediately — unless doing so would (by
    // worst-case accounting) push the next established buffer's refill past
    // its deadline, in which case catch that one refill up first and retry.
    // The pacing rule below keeps every established buffer one
    // newcomer-slot ahead, so the displacement test normally passes.
    Seconds elapsed;
    std::size_t first_established = seq.size();
    for (std::size_t i = 0; i < seq.size(); ++i) {
      elapsed += ctx.WorstServiceTime(seq[i]);
      if (!ctx.NeverServiced(seq[i])) {
        first_established = i;
        break;
      }
    }
    if (first_established == seq.size() ||
        ctx.BufferDeadline(seq[first_established]) - now >= elapsed) {
      d.id = seq.front();
    } else {
      d.id = seq[first_established];
    }
    d.not_before = now;
    return d;
  }

  const bool has_fresh = std::any_of(
      seq.begin(), seq.end(),
      [&ctx](RequestId id) { return ctx.NeverServiced(id); });

  d.id = seq.front();
  if (has_fresh) {
    // A newcomer is waiting deeper in the order (its group's or period's
    // turn): run eagerly so its turn arrives as soon as possible.
    d.not_before = now;
  } else {
    // Lazy pacing: refill as late as safely possible — maximizing memory
    // sharing (the Sweep*/GSS* rule) — while staying one newcomer-slot
    // early, which is the slack the allocation schemes budget for
    // (k·slots dynamically, N−n free slots statically) and what makes the
    // BubbleUp insertion above safe.
    d.not_before =
        std::max(now, LatestSafeStart(ctx, seq) - ctx.NewcomerReserve());
  }
  return d;
}

Seconds LatestSafeStart(const SchedulerContext& ctx,
                        const std::vector<RequestId>& sequence) {
  Seconds latest = Seconds::Infinity();
  Seconds elapsed;
  for (RequestId id : sequence) {
    elapsed += ctx.WorstServiceTime(id);
    latest = std::min(latest, ctx.BufferDeadline(id) - elapsed);
  }
  return latest;
}

}  // namespace vod::sched
