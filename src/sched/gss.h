#ifndef VODB_SCHED_GSS_H_
#define VODB_SCHED_GSS_H_

#include <deque>
#include <vector>

#include "sched/scheduler.h"

namespace vod::sched {

/// Extended GSS* scheduling [6], [8]: requests are partitioned into groups
/// of at most g buffers; groups are serviced cyclically with BubbleUp (a
/// new request's group is serviced right after the current group — Eq. (4)'s
/// 2g-slot worst initial latency), and buffers inside a group are serviced
/// in disk-position order, as late as safely possible (Sweep*).
///
/// With g = 1 this degenerates to Round-Robin; with g >= n to Sweep*.
class GssScheduler final : public BufferScheduler {
 public:
  /// `group_size` is g; the paper uses g = 8 (the memory-minimizing size
  /// for the Barracuda 9LP configuration).
  explicit GssScheduler(int group_size);

  void Add(RequestId id, Seconds now) override;
  void Remove(RequestId id) override;
  bool AdmitsMidPeriod() const override { return true; }
  const std::vector<RequestId>& ServiceSequence(const SchedulerContext& ctx,
                                                Seconds now) override;
  void OnServiceComplete(RequestId id, Seconds now) override;

  int group_size() const { return group_size_; }
  int group_count() const { return static_cast<int>(groups_.size()); }

 private:
  /// Sorts `ids` by cylinder (sweep order within a group).
  static void SortByCylinder(const SchedulerContext& ctx,
                             std::vector<RequestId>* ids);

  int group_size_;
  /// Groups in cyclic service order; front() is the group being serviced.
  std::deque<std::vector<RequestId>> groups_;
  /// Members of the front group not yet serviced this turn, sweep-ordered.
  std::vector<RequestId> current_roster_;
  bool roster_active_ = false;
  /// ServiceSequence scratch for per-group sweep sorting.
  std::vector<RequestId> grp_;
};

}  // namespace vod::sched

#endif  // VODB_SCHED_GSS_H_
