#ifndef VODB_SCHED_SWEEP_H_
#define VODB_SCHED_SWEEP_H_

#include <set>

#include "sched/scheduler.h"

namespace vod::sched {

/// Sweep* scheduling [5]: within each service period the buffers are
/// serviced in disk-position order (minimizing total seek time), each as
/// late as safely possible (maximizing memory sharing — the * refinement).
/// Newly arriving requests are not serviced within the current period
/// (AdmitsMidPeriod() == false): in the worst case a request arriving just
/// after a period begins is serviced at the end of the *next* period, which
/// is Eq. (3)'s (2n+1)-slot initial latency.
class SweepScheduler final : public BufferScheduler {
 public:
  void Add(RequestId id, Seconds now) override;
  void Remove(RequestId id) override;
  bool AdmitsMidPeriod() const override { return false; }
  const std::vector<RequestId>& ServiceSequence(const SchedulerContext& ctx,
                                                Seconds now) override;
  void OnServiceComplete(RequestId id, Seconds now) override;

  /// True when the current period has finished (the simulator admits
  /// pending requests only here).
  bool AtPeriodBoundary() const { return roster_.empty(); }

  /// Number of completed service periods (for tests).
  long periods_started() const { return periods_started_; }

 private:
  std::set<RequestId> members_;
  /// Requests of the current period not yet serviced, in sweep order
  /// (front = next).
  std::vector<RequestId> roster_;
  long periods_started_ = 0;
};

}  // namespace vod::sched

#endif  // VODB_SCHED_SWEEP_H_
