file(REMOVE_RECURSE
  "libvodb_sched.a"
)
