# Empty dependencies file for vodb_sched.
# This may be replaced when dependencies are built.
