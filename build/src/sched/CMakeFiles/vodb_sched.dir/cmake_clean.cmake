file(REMOVE_RECURSE
  "CMakeFiles/vodb_sched.dir/gss.cc.o"
  "CMakeFiles/vodb_sched.dir/gss.cc.o.d"
  "CMakeFiles/vodb_sched.dir/round_robin.cc.o"
  "CMakeFiles/vodb_sched.dir/round_robin.cc.o.d"
  "CMakeFiles/vodb_sched.dir/scheduler.cc.o"
  "CMakeFiles/vodb_sched.dir/scheduler.cc.o.d"
  "CMakeFiles/vodb_sched.dir/sweep.cc.o"
  "CMakeFiles/vodb_sched.dir/sweep.cc.o.d"
  "libvodb_sched.a"
  "libvodb_sched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vodb_sched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
