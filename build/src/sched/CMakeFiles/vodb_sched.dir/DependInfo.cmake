
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sched/gss.cc" "src/sched/CMakeFiles/vodb_sched.dir/gss.cc.o" "gcc" "src/sched/CMakeFiles/vodb_sched.dir/gss.cc.o.d"
  "/root/repo/src/sched/round_robin.cc" "src/sched/CMakeFiles/vodb_sched.dir/round_robin.cc.o" "gcc" "src/sched/CMakeFiles/vodb_sched.dir/round_robin.cc.o.d"
  "/root/repo/src/sched/scheduler.cc" "src/sched/CMakeFiles/vodb_sched.dir/scheduler.cc.o" "gcc" "src/sched/CMakeFiles/vodb_sched.dir/scheduler.cc.o.d"
  "/root/repo/src/sched/sweep.cc" "src/sched/CMakeFiles/vodb_sched.dir/sweep.cc.o" "gcc" "src/sched/CMakeFiles/vodb_sched.dir/sweep.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vodb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
