
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/allocator.cc" "src/core/CMakeFiles/vodb_core.dir/allocator.cc.o" "gcc" "src/core/CMakeFiles/vodb_core.dir/allocator.cc.o.d"
  "/root/repo/src/core/arrival_estimator.cc" "src/core/CMakeFiles/vodb_core.dir/arrival_estimator.cc.o" "gcc" "src/core/CMakeFiles/vodb_core.dir/arrival_estimator.cc.o.d"
  "/root/repo/src/core/buffer_size_table.cc" "src/core/CMakeFiles/vodb_core.dir/buffer_size_table.cc.o" "gcc" "src/core/CMakeFiles/vodb_core.dir/buffer_size_table.cc.o.d"
  "/root/repo/src/core/closed_form.cc" "src/core/CMakeFiles/vodb_core.dir/closed_form.cc.o" "gcc" "src/core/CMakeFiles/vodb_core.dir/closed_form.cc.o.d"
  "/root/repo/src/core/latency_model.cc" "src/core/CMakeFiles/vodb_core.dir/latency_model.cc.o" "gcc" "src/core/CMakeFiles/vodb_core.dir/latency_model.cc.o.d"
  "/root/repo/src/core/memory_model.cc" "src/core/CMakeFiles/vodb_core.dir/memory_model.cc.o" "gcc" "src/core/CMakeFiles/vodb_core.dir/memory_model.cc.o.d"
  "/root/repo/src/core/params.cc" "src/core/CMakeFiles/vodb_core.dir/params.cc.o" "gcc" "src/core/CMakeFiles/vodb_core.dir/params.cc.o.d"
  "/root/repo/src/core/rate_policy.cc" "src/core/CMakeFiles/vodb_core.dir/rate_policy.cc.o" "gcc" "src/core/CMakeFiles/vodb_core.dir/rate_policy.cc.o.d"
  "/root/repo/src/core/recurrence.cc" "src/core/CMakeFiles/vodb_core.dir/recurrence.cc.o" "gcc" "src/core/CMakeFiles/vodb_core.dir/recurrence.cc.o.d"
  "/root/repo/src/core/static_alloc.cc" "src/core/CMakeFiles/vodb_core.dir/static_alloc.cc.o" "gcc" "src/core/CMakeFiles/vodb_core.dir/static_alloc.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vodb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/vodb_disk.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
