file(REMOVE_RECURSE
  "CMakeFiles/vodb_core.dir/allocator.cc.o"
  "CMakeFiles/vodb_core.dir/allocator.cc.o.d"
  "CMakeFiles/vodb_core.dir/arrival_estimator.cc.o"
  "CMakeFiles/vodb_core.dir/arrival_estimator.cc.o.d"
  "CMakeFiles/vodb_core.dir/buffer_size_table.cc.o"
  "CMakeFiles/vodb_core.dir/buffer_size_table.cc.o.d"
  "CMakeFiles/vodb_core.dir/closed_form.cc.o"
  "CMakeFiles/vodb_core.dir/closed_form.cc.o.d"
  "CMakeFiles/vodb_core.dir/latency_model.cc.o"
  "CMakeFiles/vodb_core.dir/latency_model.cc.o.d"
  "CMakeFiles/vodb_core.dir/memory_model.cc.o"
  "CMakeFiles/vodb_core.dir/memory_model.cc.o.d"
  "CMakeFiles/vodb_core.dir/params.cc.o"
  "CMakeFiles/vodb_core.dir/params.cc.o.d"
  "CMakeFiles/vodb_core.dir/rate_policy.cc.o"
  "CMakeFiles/vodb_core.dir/rate_policy.cc.o.d"
  "CMakeFiles/vodb_core.dir/recurrence.cc.o"
  "CMakeFiles/vodb_core.dir/recurrence.cc.o.d"
  "CMakeFiles/vodb_core.dir/static_alloc.cc.o"
  "CMakeFiles/vodb_core.dir/static_alloc.cc.o.d"
  "libvodb_core.a"
  "libvodb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vodb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
