# Empty dependencies file for vodb_core.
# This may be replaced when dependencies are built.
