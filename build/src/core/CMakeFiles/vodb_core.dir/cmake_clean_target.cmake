file(REMOVE_RECURSE
  "libvodb_core.a"
)
