file(REMOVE_RECURSE
  "CMakeFiles/vodb_vod.dir/analysis.cc.o"
  "CMakeFiles/vodb_vod.dir/analysis.cc.o.d"
  "CMakeFiles/vodb_vod.dir/server.cc.o"
  "CMakeFiles/vodb_vod.dir/server.cc.o.d"
  "libvodb_vod.a"
  "libvodb_vod.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vodb_vod.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
