file(REMOVE_RECURSE
  "libvodb_vod.a"
)
