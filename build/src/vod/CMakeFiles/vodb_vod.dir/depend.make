# Empty dependencies file for vodb_vod.
# This may be replaced when dependencies are built.
