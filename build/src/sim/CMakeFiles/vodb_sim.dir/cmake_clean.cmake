file(REMOVE_RECURSE
  "CMakeFiles/vodb_sim.dir/memory_broker.cc.o"
  "CMakeFiles/vodb_sim.dir/memory_broker.cc.o.d"
  "CMakeFiles/vodb_sim.dir/metrics.cc.o"
  "CMakeFiles/vodb_sim.dir/metrics.cc.o.d"
  "CMakeFiles/vodb_sim.dir/multi_disk.cc.o"
  "CMakeFiles/vodb_sim.dir/multi_disk.cc.o.d"
  "CMakeFiles/vodb_sim.dir/rng.cc.o"
  "CMakeFiles/vodb_sim.dir/rng.cc.o.d"
  "CMakeFiles/vodb_sim.dir/vod_simulator.cc.o"
  "CMakeFiles/vodb_sim.dir/vod_simulator.cc.o.d"
  "CMakeFiles/vodb_sim.dir/workload.cc.o"
  "CMakeFiles/vodb_sim.dir/workload.cc.o.d"
  "CMakeFiles/vodb_sim.dir/zipf.cc.o"
  "CMakeFiles/vodb_sim.dir/zipf.cc.o.d"
  "libvodb_sim.a"
  "libvodb_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vodb_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
