file(REMOVE_RECURSE
  "libvodb_sim.a"
)
