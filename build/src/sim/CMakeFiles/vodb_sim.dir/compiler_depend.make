# Empty compiler generated dependencies file for vodb_sim.
# This may be replaced when dependencies are built.
