
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sim/memory_broker.cc" "src/sim/CMakeFiles/vodb_sim.dir/memory_broker.cc.o" "gcc" "src/sim/CMakeFiles/vodb_sim.dir/memory_broker.cc.o.d"
  "/root/repo/src/sim/metrics.cc" "src/sim/CMakeFiles/vodb_sim.dir/metrics.cc.o" "gcc" "src/sim/CMakeFiles/vodb_sim.dir/metrics.cc.o.d"
  "/root/repo/src/sim/multi_disk.cc" "src/sim/CMakeFiles/vodb_sim.dir/multi_disk.cc.o" "gcc" "src/sim/CMakeFiles/vodb_sim.dir/multi_disk.cc.o.d"
  "/root/repo/src/sim/rng.cc" "src/sim/CMakeFiles/vodb_sim.dir/rng.cc.o" "gcc" "src/sim/CMakeFiles/vodb_sim.dir/rng.cc.o.d"
  "/root/repo/src/sim/vod_simulator.cc" "src/sim/CMakeFiles/vodb_sim.dir/vod_simulator.cc.o" "gcc" "src/sim/CMakeFiles/vodb_sim.dir/vod_simulator.cc.o.d"
  "/root/repo/src/sim/workload.cc" "src/sim/CMakeFiles/vodb_sim.dir/workload.cc.o" "gcc" "src/sim/CMakeFiles/vodb_sim.dir/workload.cc.o.d"
  "/root/repo/src/sim/zipf.cc" "src/sim/CMakeFiles/vodb_sim.dir/zipf.cc.o" "gcc" "src/sim/CMakeFiles/vodb_sim.dir/zipf.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vodb_common.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/vodb_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vodb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/vodb_sched.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
