
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/disk/chunked_store.cc" "src/disk/CMakeFiles/vodb_disk.dir/chunked_store.cc.o" "gcc" "src/disk/CMakeFiles/vodb_disk.dir/chunked_store.cc.o.d"
  "/root/repo/src/disk/disk_profile.cc" "src/disk/CMakeFiles/vodb_disk.dir/disk_profile.cc.o" "gcc" "src/disk/CMakeFiles/vodb_disk.dir/disk_profile.cc.o.d"
  "/root/repo/src/disk/seek_model.cc" "src/disk/CMakeFiles/vodb_disk.dir/seek_model.cc.o" "gcc" "src/disk/CMakeFiles/vodb_disk.dir/seek_model.cc.o.d"
  "/root/repo/src/disk/simulated_disk.cc" "src/disk/CMakeFiles/vodb_disk.dir/simulated_disk.cc.o" "gcc" "src/disk/CMakeFiles/vodb_disk.dir/simulated_disk.cc.o.d"
  "/root/repo/src/disk/video_layout.cc" "src/disk/CMakeFiles/vodb_disk.dir/video_layout.cc.o" "gcc" "src/disk/CMakeFiles/vodb_disk.dir/video_layout.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vodb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
