file(REMOVE_RECURSE
  "CMakeFiles/vodb_disk.dir/chunked_store.cc.o"
  "CMakeFiles/vodb_disk.dir/chunked_store.cc.o.d"
  "CMakeFiles/vodb_disk.dir/disk_profile.cc.o"
  "CMakeFiles/vodb_disk.dir/disk_profile.cc.o.d"
  "CMakeFiles/vodb_disk.dir/seek_model.cc.o"
  "CMakeFiles/vodb_disk.dir/seek_model.cc.o.d"
  "CMakeFiles/vodb_disk.dir/simulated_disk.cc.o"
  "CMakeFiles/vodb_disk.dir/simulated_disk.cc.o.d"
  "CMakeFiles/vodb_disk.dir/video_layout.cc.o"
  "CMakeFiles/vodb_disk.dir/video_layout.cc.o.d"
  "libvodb_disk.a"
  "libvodb_disk.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vodb_disk.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
