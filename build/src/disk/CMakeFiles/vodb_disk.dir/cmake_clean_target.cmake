file(REMOVE_RECURSE
  "libvodb_disk.a"
)
