# Empty dependencies file for vodb_disk.
# This may be replaced when dependencies are built.
