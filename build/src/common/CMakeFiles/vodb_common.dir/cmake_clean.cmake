file(REMOVE_RECURSE
  "CMakeFiles/vodb_common.dir/stats.cc.o"
  "CMakeFiles/vodb_common.dir/stats.cc.o.d"
  "CMakeFiles/vodb_common.dir/status.cc.o"
  "CMakeFiles/vodb_common.dir/status.cc.o.d"
  "libvodb_common.a"
  "libvodb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vodb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
