file(REMOVE_RECURSE
  "libvodb_common.a"
)
