# Empty compiler generated dependencies file for vodb_common.
# This may be replaced when dependencies are built.
