# Empty compiler generated dependencies file for admission_trace.
# This may be replaced when dependencies are built.
