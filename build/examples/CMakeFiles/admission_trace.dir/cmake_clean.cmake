file(REMOVE_RECURSE
  "CMakeFiles/admission_trace.dir/admission_trace.cpp.o"
  "CMakeFiles/admission_trace.dir/admission_trace.cpp.o.d"
  "admission_trace"
  "admission_trace.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/admission_trace.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
