# Empty dependencies file for arrival_estimator_test.
# This may be replaced when dependencies are built.
