
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/arrival_estimator_test.cc" "tests/CMakeFiles/arrival_estimator_test.dir/arrival_estimator_test.cc.o" "gcc" "tests/CMakeFiles/arrival_estimator_test.dir/arrival_estimator_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/vod/CMakeFiles/vodb_vod.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/vodb_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/sched/CMakeFiles/vodb_sched.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/vodb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/disk/CMakeFiles/vodb_disk.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/vodb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
