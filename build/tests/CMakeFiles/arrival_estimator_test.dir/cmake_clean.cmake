file(REMOVE_RECURSE
  "CMakeFiles/arrival_estimator_test.dir/arrival_estimator_test.cc.o"
  "CMakeFiles/arrival_estimator_test.dir/arrival_estimator_test.cc.o.d"
  "arrival_estimator_test"
  "arrival_estimator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arrival_estimator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
