file(REMOVE_RECURSE
  "CMakeFiles/vcr_test.dir/vcr_test.cc.o"
  "CMakeFiles/vcr_test.dir/vcr_test.cc.o.d"
  "vcr_test"
  "vcr_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vcr_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
