# Empty dependencies file for vcr_test.
# This may be replaced when dependencies are built.
