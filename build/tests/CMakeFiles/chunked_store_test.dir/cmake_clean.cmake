file(REMOVE_RECURSE
  "CMakeFiles/chunked_store_test.dir/chunked_store_test.cc.o"
  "CMakeFiles/chunked_store_test.dir/chunked_store_test.cc.o.d"
  "chunked_store_test"
  "chunked_store_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/chunked_store_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
