# Empty compiler generated dependencies file for chunked_store_test.
# This may be replaced when dependencies are built.
