file(REMOVE_RECURSE
  "CMakeFiles/multi_disk_test.dir/multi_disk_test.cc.o"
  "CMakeFiles/multi_disk_test.dir/multi_disk_test.cc.o.d"
  "multi_disk_test"
  "multi_disk_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_disk_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
