# Empty dependencies file for rate_policy_test.
# This may be replaced when dependencies are built.
