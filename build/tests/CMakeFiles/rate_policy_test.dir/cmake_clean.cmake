file(REMOVE_RECURSE
  "CMakeFiles/rate_policy_test.dir/rate_policy_test.cc.o"
  "CMakeFiles/rate_policy_test.dir/rate_policy_test.cc.o.d"
  "rate_policy_test"
  "rate_policy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rate_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
