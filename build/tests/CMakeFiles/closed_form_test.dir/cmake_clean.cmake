file(REMOVE_RECURSE
  "CMakeFiles/closed_form_test.dir/closed_form_test.cc.o"
  "CMakeFiles/closed_form_test.dir/closed_form_test.cc.o.d"
  "closed_form_test"
  "closed_form_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/closed_form_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
