# Empty dependencies file for buffer_size_table_test.
# This may be replaced when dependencies are built.
