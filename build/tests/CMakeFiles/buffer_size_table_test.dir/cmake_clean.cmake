file(REMOVE_RECURSE
  "CMakeFiles/buffer_size_table_test.dir/buffer_size_table_test.cc.o"
  "CMakeFiles/buffer_size_table_test.dir/buffer_size_table_test.cc.o.d"
  "buffer_size_table_test"
  "buffer_size_table_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/buffer_size_table_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
