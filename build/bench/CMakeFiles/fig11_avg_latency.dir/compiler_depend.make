# Empty compiler generated dependencies file for fig11_avg_latency.
# This may be replaced when dependencies are built.
