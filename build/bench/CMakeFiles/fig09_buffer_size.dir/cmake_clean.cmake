file(REMOVE_RECURSE
  "CMakeFiles/fig09_buffer_size.dir/fig09_buffer_size.cc.o"
  "CMakeFiles/fig09_buffer_size.dir/fig09_buffer_size.cc.o.d"
  "fig09_buffer_size"
  "fig09_buffer_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig09_buffer_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
