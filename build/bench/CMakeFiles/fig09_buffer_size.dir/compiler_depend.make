# Empty compiler generated dependencies file for fig09_buffer_size.
# This may be replaced when dependencies are built.
