# Empty compiler generated dependencies file for fig07_tlog.
# This may be replaced when dependencies are built.
