file(REMOVE_RECURSE
  "CMakeFiles/fig07_tlog.dir/fig07_tlog.cc.o"
  "CMakeFiles/fig07_tlog.dir/fig07_tlog.cc.o.d"
  "fig07_tlog"
  "fig07_tlog.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig07_tlog.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
