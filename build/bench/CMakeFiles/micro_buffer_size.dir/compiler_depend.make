# Empty compiler generated dependencies file for micro_buffer_size.
# This may be replaced when dependencies are built.
