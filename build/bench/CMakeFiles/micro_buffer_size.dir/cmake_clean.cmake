file(REMOVE_RECURSE
  "CMakeFiles/micro_buffer_size.dir/micro_buffer_size.cc.o"
  "CMakeFiles/micro_buffer_size.dir/micro_buffer_size.cc.o.d"
  "micro_buffer_size"
  "micro_buffer_size.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_buffer_size.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
