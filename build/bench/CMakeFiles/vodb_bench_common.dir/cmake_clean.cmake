file(REMOVE_RECURSE
  "CMakeFiles/vodb_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/vodb_bench_common.dir/bench_common.cc.o.d"
  "libvodb_bench_common.a"
  "libvodb_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vodb_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
