# Empty compiler generated dependencies file for vodb_bench_common.
# This may be replaced when dependencies are built.
