file(REMOVE_RECURSE
  "libvodb_bench_common.a"
)
