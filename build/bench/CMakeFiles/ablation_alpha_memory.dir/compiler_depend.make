# Empty compiler generated dependencies file for ablation_alpha_memory.
# This may be replaced when dependencies are built.
