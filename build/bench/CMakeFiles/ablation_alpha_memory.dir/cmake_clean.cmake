file(REMOVE_RECURSE
  "CMakeFiles/ablation_alpha_memory.dir/ablation_alpha_memory.cc.o"
  "CMakeFiles/ablation_alpha_memory.dir/ablation_alpha_memory.cc.o.d"
  "ablation_alpha_memory"
  "ablation_alpha_memory.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_alpha_memory.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
