# Empty compiler generated dependencies file for fig06_workload.
# This may be replaced when dependencies are built.
