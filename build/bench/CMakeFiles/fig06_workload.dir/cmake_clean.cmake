file(REMOVE_RECURSE
  "CMakeFiles/fig06_workload.dir/fig06_workload.cc.o"
  "CMakeFiles/fig06_workload.dir/fig06_workload.cc.o.d"
  "fig06_workload"
  "fig06_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig06_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
