# Empty compiler generated dependencies file for table5_capacity_ratio.
# This may be replaced when dependencies are built.
