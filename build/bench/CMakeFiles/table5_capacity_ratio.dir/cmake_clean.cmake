file(REMOVE_RECURSE
  "CMakeFiles/table5_capacity_ratio.dir/table5_capacity_ratio.cc.o"
  "CMakeFiles/table5_capacity_ratio.dir/table5_capacity_ratio.cc.o.d"
  "table5_capacity_ratio"
  "table5_capacity_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table5_capacity_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
