# Empty compiler generated dependencies file for table4_latency_ratio.
# This may be replaced when dependencies are built.
