file(REMOVE_RECURSE
  "CMakeFiles/table4_latency_ratio.dir/table4_latency_ratio.cc.o"
  "CMakeFiles/table4_latency_ratio.dir/table4_latency_ratio.cc.o.d"
  "table4_latency_ratio"
  "table4_latency_ratio.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table4_latency_ratio.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
