file(REMOVE_RECURSE
  "CMakeFiles/fig08_alpha.dir/fig08_alpha.cc.o"
  "CMakeFiles/fig08_alpha.dir/fig08_alpha.cc.o.d"
  "fig08_alpha"
  "fig08_alpha.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig08_alpha.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
