# Empty compiler generated dependencies file for fig08_alpha.
# This may be replaced when dependencies are built.
