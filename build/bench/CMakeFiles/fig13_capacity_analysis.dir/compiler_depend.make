# Empty compiler generated dependencies file for fig13_capacity_analysis.
# This may be replaced when dependencies are built.
