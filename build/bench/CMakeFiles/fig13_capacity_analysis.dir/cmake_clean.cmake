file(REMOVE_RECURSE
  "CMakeFiles/fig13_capacity_analysis.dir/fig13_capacity_analysis.cc.o"
  "CMakeFiles/fig13_capacity_analysis.dir/fig13_capacity_analysis.cc.o.d"
  "fig13_capacity_analysis"
  "fig13_capacity_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig13_capacity_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
