file(REMOVE_RECURSE
  "CMakeFiles/fig14_capacity_sim.dir/fig14_capacity_sim.cc.o"
  "CMakeFiles/fig14_capacity_sim.dir/fig14_capacity_sim.cc.o.d"
  "fig14_capacity_sim"
  "fig14_capacity_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig14_capacity_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
