# Empty compiler generated dependencies file for fig14_capacity_sim.
# This may be replaced when dependencies are built.
